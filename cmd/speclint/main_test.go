package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"strings"
	"testing"

	"specsampling/internal/analysis"
	"specsampling/internal/cli"
)

// TestListStable pins the -list output to the analyzer registry: every
// registered analyzer appears exactly once, in reporting order, with its
// one-line doc.
func TestListStable(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-list"}, &stdout, &stderr); err != nil {
		t.Fatalf("run(-list) = %v, want nil", err)
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	names := analysis.Names()
	if len(lines) != len(names) {
		t.Fatalf("-list printed %d lines, want %d:\n%s", len(lines), len(names), stdout.String())
	}
	for i, a := range analysis.All() {
		if !strings.HasPrefix(lines[i], a.Name) {
			t.Errorf("line %d = %q, want prefix %q", i, lines[i], a.Name)
		}
		if !strings.Contains(lines[i], a.Doc) {
			t.Errorf("line %d = %q, want doc %q", i, lines[i], a.Doc)
		}
	}
}

// TestUnknownAnalyzer checks the usage-error path: a bad -analyzers name
// must name the offender, list what is available, and map to exit 2.
func TestUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-analyzers", "detmap,nosuch"}, &stdout, &stderr)
	if !errors.Is(err, cli.ErrUsage) {
		t.Fatalf("run(-analyzers nosuch) = %v, want ErrUsage", err)
	}
	if got := cli.ExitCode(err); got != 2 {
		t.Errorf("ExitCode = %d, want 2", got)
	}
	msg := err.Error()
	if !strings.Contains(msg, "nosuch") {
		t.Errorf("error %q does not name the unknown analyzer", msg)
	}
	for _, name := range analysis.Names() {
		if !strings.Contains(msg, name) {
			t.Errorf("error %q does not list available analyzer %q", msg, name)
		}
	}
}

// TestBadFlag checks that flag-parse failures are reported usage errors
// (flag prints its own message; main must not repeat it) mapping to exit 2.
func TestBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-nope"}, &stdout, &stderr)
	if !errors.Is(err, cli.ErrUsage) {
		t.Fatalf("run(-nope) = %v, want ErrUsage", err)
	}
	if !cli.Reported(err) {
		t.Error("flag-parse error should be marked reported")
	}
	if got := cli.ExitCode(err); got != 2 {
		t.Errorf("ExitCode = %d, want 2", got)
	}
}

// TestHelp checks that -h maps to exit 0 (asking for usage is not failure).
func TestHelp(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-h"}, &stdout, &stderr)
	if got := cli.ExitCode(err); got != 0 {
		t.Errorf("ExitCode(-h) = %d, want 0", got)
	}
}

// TestCleanTree runs the full analyzer set over this command's own package
// (the test's working directory) and expects a clean exit. The module-wide
// self-run lives in analysis.TestTreeClean; this exercises the command
// wiring — loading, -json shape, exit status.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the module; skipped in -short")
	}
	var stdout, stderr bytes.Buffer
	err := run([]string{"-json", "./..."}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run(./...) = %v, stderr:\n%s\nstdout:\n%s", err, stderr.String(), stdout.String())
	}
	var findings []jsonFinding
	if jerr := json.Unmarshal(stdout.Bytes(), &findings); jerr != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", jerr, stdout.String())
	}
	if len(findings) != 0 {
		t.Errorf("self-run reported %d findings, want 0:\n%s", len(findings), stdout.String())
	}
	if got := cli.ExitCode(err); got != 0 {
		t.Errorf("ExitCode = %d, want 0", got)
	}
}

// TestFindingsExitOne runs a single analyzer over the lockheld golden
// fixture via the loader and checks the findings path: diagnostics on
// stdout, summary on stderr, errFindings mapping to exit 1, and the -json
// shape carrying file/line/analyzer/message.
func TestFindingsExitOne(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the module; skipped in -short")
	}
	var stdout, stderr bytes.Buffer
	err := run([]string{"-analyzers", "lockheld", "-json",
		"../../internal/analysis/testdata/src/lockheld"}, &stdout, &stderr)
	if !errors.Is(err, errFindings) {
		t.Fatalf("run(fixture) = %v, want errFindings; stderr:\n%s", err, stderr.String())
	}
	if got := cli.ExitCode(err); got != 1 {
		t.Errorf("ExitCode = %d, want 1", got)
	}
	var findings []jsonFinding
	if jerr := json.Unmarshal(stdout.Bytes(), &findings); jerr != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", jerr, stdout.String())
	}
	if len(findings) == 0 {
		t.Fatal("fixture run produced no findings")
	}
	for _, f := range findings {
		if f.Analyzer != "lockheld" {
			t.Errorf("finding from %q, want lockheld only", f.Analyzer)
		}
		if f.File == "" || f.Line <= 0 || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("summary missing from stderr: %q", stderr.String())
	}
}

// TestHelpIsNotUsageError guards the ExitCode mapping run relies on.
func TestHelpIsNotUsageError(t *testing.T) {
	if cli.ExitCode(flag.ErrHelp) != 0 {
		t.Error("flag.ErrHelp must map to exit 0")
	}
}
