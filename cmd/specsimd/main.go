// Command specsimd serves the sampling pipeline as a long-lived daemon:
// many clients submit experiment configurations over HTTP and share one
// warm artifact store, one bounded job queue, and one dedup table.
//
// Usage:
//
//	specsimd -cache-dir /var/cache/specsim          # listen on 127.0.0.1:8742
//	specsimd -cache-dir DIR -addr :9000 -job-workers 4
//
// A session:
//
//	curl -d '{"run":"fig4","scale":"small"}' localhost:8742/v1/jobs
//	curl localhost:8742/v1/jobs/j000001                # status
//	curl localhost:8742/v1/jobs/j000001/events         # live JSONL progress
//	curl localhost:8742/v1/jobs/j000001/result         # report JSON
//
// The result bytes are byte-identical to `experiments -run fig4 -scale
// small -json FILE` against the same store. Identical submissions dedup to
// one computation; overload answers 503 with Retry-After.
//
// Telemetry: GET /metrics is a Prometheus text exposition of every counter,
// gauge and latency histogram; GET /v1/stats/history is the last ten
// minutes of runtime/daemon gauges sampled at 1 Hz; every response carries
// an X-Trace-Id. -access-log writes one JSON line per request, -debug-addr
// exposes net/http/pprof on a separate (private) listener, and
// -no-telemetry turns the whole layer off.
//
// Shutdown: SIGTERM (or SIGINT) stops accepting work and drains in-flight
// jobs so every completed stage reaches the store; a second signal or the
// -drain-timeout deadline hard-cancels whatever is still running (the store
// stays uncorrupted either way — interrupted stages are simply recomputed).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"specsampling/internal/cli"
	"specsampling/internal/obs"
	"specsampling/internal/serve"
	"specsampling/internal/store"
)

func main() {
	// The root context and the signal subscription are minted here and
	// nowhere else. The first signal triggers the graceful drain; the root
	// stays live through it so draining jobs finish, and hard-cancelling it
	// is the escalation path (second signal or drain timeout).
	root, hardCancel := context.WithCancel(context.Background())
	defer hardCancel()
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	err := run(root, hardCancel, sig, os.Args[1:])
	if err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintln(os.Stderr, "specsimd:", err)
	}
	if code := cli.ExitCode(err); code != 0 {
		os.Exit(code)
	}
}

func run(ctx context.Context, hardCancel context.CancelFunc, sig <-chan os.Signal, args []string) error {
	fs := flag.NewFlagSet("specsimd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8742", "listen address")
	cacheDir := fs.String("cache-dir", os.Getenv("SPECSIM_CACHE"),
		"persistent artifact cache directory shared by every job "+
			"(required; env SPECSIM_CACHE sets the default)")
	shards := fs.Int("shards", 0,
		"store shard-directory count for a newly created cache (0 = default; "+
			"an existing cache keeps the count it was created with)")
	workers := fs.Int("workers", runtime.NumCPU(),
		"worker goroutines inside each job's pipeline (results are identical for any value; <= 0 means GOMAXPROCS)")
	jobWorkers := fs.Int("job-workers", 2, "jobs executing concurrently")
	queueDepth := fs.Int("queue-depth", 64, "queued jobs beyond which submissions are shed with 503")
	maxClient := fs.Int("max-client", 16, "live (queued+running) jobs one client may hold")
	drainTimeout := fs.Duration("drain-timeout", time.Minute,
		"how long a shutdown signal waits for in-flight jobs before hard-cancelling them")
	debugAddr := fs.String("debug-addr", "",
		"listen address for net/http/pprof profiling endpoints (empty = off; "+
			"bind to localhost — the profiles are not for public exposure)")
	accessLog := fs.String("access-log", "",
		`access-log destination: a file path (appended), "-" for stderr, empty for off`)
	noTelemetry := fs.Bool("no-telemetry", false,
		"disable request telemetry, /metrics content, access logs and the stats collector")
	statsInterval := fs.Duration("stats-interval", time.Second, "self-monitoring sampling period")
	statsHistory := fs.Int("stats-history", 600, "snapshots retained for /v1/stats/history")
	obsFlags := obs.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return cli.Usagef("%v", err)
	}
	if *cacheDir == "" {
		fs.Usage()
		return cli.Usagef("missing -cache-dir (or env SPECSIM_CACHE): the daemon serves every client from one persistent artifact store")
	}
	st, err := store.OpenSharded(*cacheDir, *shards)
	if err != nil {
		return err
	}
	shutdown, err := obsFlags.Activate(os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := shutdown(); cerr != nil {
			fmt.Fprintln(os.Stderr, "specsimd:", cerr)
		}
	}()

	var accessSink *obs.AccessSink
	if *accessLog != "" && !*noTelemetry {
		if *accessLog == "-" {
			// Hide os.Stderr's Closer so sink.Close never closes stderr.
			accessSink = obs.NewAccessSink(struct{ io.Writer }{os.Stderr})
		} else {
			f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("open access log: %w", err)
			}
			accessSink = obs.NewAccessSink(f)
		}
		defer func() {
			if cerr := accessSink.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "specsimd: access log:", cerr)
			}
		}()
	}

	srv, err := serve.New(ctx, serve.Config{
		Store:            st,
		Workers:          *workers,
		JobWorkers:       *jobWorkers,
		QueueDepth:       *queueDepth,
		MaxPerClient:     *maxClient,
		AccessLog:        accessSink,
		DisableTelemetry: *noTelemetry,
		StatsInterval:    *statsInterval,
		StatsHistory:     *statsHistory,
	})
	if err != nil {
		return err
	}

	// The profiling listener is separate from the API listener on purpose:
	// pprof handlers expose heap contents and must never ride on the
	// publicly reachable address. Off unless -debug-addr is set.
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dhs := &http.Server{Handler: dmux}
		go func() {
			if derr := dhs.Serve(dln); derr != nil && !errors.Is(derr, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "specsimd: debug server:", derr)
			}
		}()
		defer func() {
			if cerr := dhs.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "specsimd: debug server:", cerr)
			}
		}()
		fmt.Fprintf(os.Stderr, "specsimd: pprof on http://%s/debug/pprof/\n", dln.Addr())
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "specsimd: listening on %s (store %s, %d shards)\n",
		ln.Addr(), st.Dir(), st.Shards())

	select {
	case err := <-serveErr:
		return err
	case <-sig:
	}
	fmt.Fprintf(os.Stderr, "specsimd: shutdown signal; draining in-flight jobs (timeout %s, signal again to abort)\n", *drainTimeout)

	drained := make(chan struct{})
	go func() {
		srv.Drain() // rejects new work immediately, then waits for jobs
		close(drained)
	}()
	go func() {
		select {
		case <-drained:
		case <-sig:
			fmt.Fprintln(os.Stderr, "specsimd: second signal; hard-cancelling")
			hardCancel()
		case <-time.After(*drainTimeout):
			fmt.Fprintln(os.Stderr, "specsimd: drain timeout; hard-cancelling")
			hardCancel()
		}
	}()
	// Shutdown stops the listener and waits for handlers; the event streams
	// end as their jobs finish (or immediately, once the drain closes them).
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "specsimd:", err)
	}
	<-drained
	fmt.Fprintln(os.Stderr, "specsimd: drained; bye")
	return nil
}
