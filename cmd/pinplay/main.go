// Command pinplay is the checkpointing front-end: it logs whole pinballs,
// cuts regional pinballs at the SimPoint-chosen regions, and replays
// pinball files with the standard Pintools — mirroring the PinPlay
// logger/replayer workflow of the paper's Figure 2.
//
// Usage:
//
//	pinplay log    -bench 505.mcf_r -dir out/ [-scale medium] [-warmup 16]
//	pinplay replay -pinball out/505.mcf_r.region_03.pb [-scale medium]
//	pinplay replay [-workers N] out/*.pb
//
// Replaying several pinballs at once — even from different benchmarks —
// runs them as one flat sharded work list across the worker pool
// (pinball.ReplaySuite), the paper's "executed in parallel to save time".
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"

	"specsampling/internal/cache"
	"specsampling/internal/core"
	"specsampling/internal/pin"
	"specsampling/internal/pinball"
	"specsampling/internal/pintool"
	"specsampling/internal/workload"
)

func main() {
	// Root context: SIGINT aborts logging/replay cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pinplay:", err)
		stop()
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: pinplay <log|replay> [flags]")
	}
	switch args[0] {
	case "log":
		return logPinballs(ctx, args[1:])
	case "replay":
		return replay(ctx, args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want log or replay)", args[0])
	}
}

func logPinballs(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("log", flag.ContinueOnError)
	bench := fs.String("bench", "", "benchmark name")
	dir := fs.String("dir", ".", "output directory")
	scaleName := fs.String("scale", "medium", "workload scale")
	warmup := fs.Int("warmup", 0, "warm-up slices to attach to each regional pinball")
	maxK := fs.Int("maxk", 35, "maximum number of clusters")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *bench == "" {
		return fmt.Errorf("missing -bench")
	}
	spec, err := workload.ByName(*bench)
	if err != nil {
		return err
	}
	scale, err := workload.ScaleByName(*scaleName)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig(scale)
	cfg.SimPoint.MaxK = *maxK
	an, err := core.Analyze(ctx, spec, cfg)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}

	whole := an.WholePinball()
	wholePath := filepath.Join(*dir, spec.Name+".whole.pb")
	if err := whole.Save(wholePath); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d instructions)\n", wholePath, whole.Len)

	pbs, err := an.Pinballs(an.Result, *warmup)
	if err != nil {
		return err
	}
	for i, pb := range pbs {
		path := filepath.Join(*dir, fmt.Sprintf("%s.region_%02d.pb", spec.Name, i))
		if err := pb.Save(path); err != nil {
			return err
		}
		fmt.Printf("wrote %s (weight %.4f, %d instructions)\n", path, pb.Weight, pb.Len)
	}
	return nil
}

func replay(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	path := fs.String("pinball", "", "pinball file to replay")
	scaleName := fs.String("scale", "medium", "workload scale the pinball was captured at")
	workers := fs.Int("workers", 0, "replay workers for multi-pinball runs (0 = all cores)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if *path != "" {
		paths = append([]string{*path}, paths...)
	}
	if len(paths) == 0 {
		return fmt.Errorf("missing -pinball (or pinball file arguments)")
	}
	if len(paths) > 1 {
		return replaySuite(ctx, paths, *scaleName, *workers)
	}
	pb, err := pinball.Load(paths[0])
	if err != nil {
		return err
	}
	if pb.Scale != "" && pb.Scale != *scaleName {
		fmt.Fprintf(os.Stderr, "pinplay: note: pinball was captured at scale %q, replaying at %q\n", pb.Scale, *scaleName)
		*scaleName = pb.Scale
	}
	spec, err := workload.ByName(pb.Benchmark)
	if err != nil {
		return err
	}
	scale, err := workload.ScaleByName(*scaleName)
	if err != nil {
		return err
	}
	prog, err := spec.Build(scale)
	if err != nil {
		return err
	}

	hier, err := cache.NewHierarchy(cache.ScaledHierarchy(cache.TableIConfig(), scale.CacheDivs))
	if err != nil {
		return err
	}
	mix := pintool.NewLdStMix()
	ac := pintool.NewAllCache(hier)
	n, err := pinball.Replay(prog, pb, []pin.Tool{mix, ac}...)
	if err != nil {
		return err
	}

	fmt.Printf("pinball:      %s (%s, region %d, weight %.4f)\n", paths[0], pb.Kind, pb.Region, pb.Weight)
	if pb.HasWarmup {
		fmt.Printf("warm-up:      %d instructions\n", pb.WarmupLen)
	}
	fmt.Printf("instructions: %d\n", n)
	fr := mix.Fractions()
	fmt.Printf("ldstmix:      NO_MEM %.2f%%  MEM_R %.2f%%  MEM_W %.2f%%  MEM_RW %.2f%%\n",
		fr[0]*100, fr[1]*100, fr[2]*100, fr[3]*100)
	l1d, l2, l3 := hier.MissRates()
	fmt.Printf("allcache:     L1D %.2f%%  L2 %.2f%%  L3 %.2f%% miss\n", l1d*100, l2*100, l3*100)
	return nil
}

// replaySuite replays several pinball files — possibly spanning benchmarks —
// as one flat sharded work list, printing a per-pinball summary in input
// order.
func replaySuite(ctx context.Context, paths []string, scaleName string, workers int) error {
	pbs := make([]*pinball.Pinball, len(paths))
	for i, p := range paths {
		pb, err := pinball.Load(p)
		if err != nil {
			return err
		}
		pbs[i] = pb
	}

	// Group by benchmark, preserving first-appearance order so output and
	// program construction are deterministic.
	type group struct {
		bench string
		idx   []int // indices into pbs/paths
	}
	var groups []group
	byBench := map[string]int{}
	for i, pb := range pbs {
		g, ok := byBench[pb.Benchmark]
		if !ok {
			g = len(groups)
			byBench[pb.Benchmark] = g
			groups = append(groups, group{bench: pb.Benchmark})
		}
		groups[g].idx = append(groups[g].idx, i)
	}

	jobs := make([]pinball.SuiteJob, len(groups))
	mixes := make([]*pintool.LdStMix, len(pbs))
	for g, grp := range groups {
		spec, err := workload.ByName(grp.bench)
		if err != nil {
			return err
		}
		sn := scaleName
		if s := pbs[grp.idx[0]].Scale; s != "" {
			sn = s
		}
		scale, err := workload.ScaleByName(sn)
		if err != nil {
			return err
		}
		prog, err := spec.Build(scale)
		if err != nil {
			return err
		}
		grpPbs := make([]*pinball.Pinball, len(grp.idx))
		for j, i := range grp.idx {
			grpPbs[j] = pbs[i]
		}
		idx := grp.idx
		jobs[g] = pinball.SuiteJob{
			Program:  prog,
			Pinballs: grpPbs,
			MakeTools: func(j int) []pin.Tool {
				m := pintool.NewLdStMix()
				mixes[idx[j]] = m
				return []pin.Tool{m}
			},
		}
	}

	results := pinball.ReplaySuite(ctx, jobs, workers)
	// Flatten back to input order for printing.
	flat := make([]pinball.ReplayResult, len(pbs))
	for g, grp := range groups {
		for j, i := range grp.idx {
			flat[i] = results[g][j]
		}
	}
	var total uint64
	var firstErr error
	for i, res := range flat {
		if res.Err != nil {
			fmt.Printf("%-40s ERROR: %v\n", paths[i], res.Err)
			if firstErr == nil {
				firstErr = res.Err
			}
			continue
		}
		fr := mixes[i].Fractions()
		fmt.Printf("%-40s %-12s region %2d  weight %.4f  %12d instrs  MEM_R %.1f%%\n",
			paths[i], res.Pinball.Benchmark, res.Pinball.Region, res.Pinball.Weight,
			res.Executed, fr[1]*100)
		total += res.Executed
	}
	fmt.Printf("replayed %d pinballs across %d benchmarks: %d instructions\n",
		len(pbs), len(groups), total)
	return firstErr
}
