// Command pinplay is the checkpointing front-end: it logs whole pinballs,
// cuts regional pinballs at the SimPoint-chosen regions, and replays
// pinball files with the standard Pintools — mirroring the PinPlay
// logger/replayer workflow of the paper's Figure 2.
//
// Usage:
//
//	pinplay log    -bench 505.mcf_r -dir out/ [-scale medium] [-warmup 16]
//	pinplay replay -pinball out/505.mcf_r.region_03.pb [-scale medium]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"

	"specsampling/internal/cache"
	"specsampling/internal/core"
	"specsampling/internal/pin"
	"specsampling/internal/pinball"
	"specsampling/internal/pintool"
	"specsampling/internal/workload"
)

func main() {
	// Root context: SIGINT aborts logging/replay cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pinplay:", err)
		stop()
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: pinplay <log|replay> [flags]")
	}
	switch args[0] {
	case "log":
		return logPinballs(ctx, args[1:])
	case "replay":
		return replay(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want log or replay)", args[0])
	}
}

func logPinballs(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("log", flag.ContinueOnError)
	bench := fs.String("bench", "", "benchmark name")
	dir := fs.String("dir", ".", "output directory")
	scaleName := fs.String("scale", "medium", "workload scale")
	warmup := fs.Int("warmup", 0, "warm-up slices to attach to each regional pinball")
	maxK := fs.Int("maxk", 35, "maximum number of clusters")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *bench == "" {
		return fmt.Errorf("missing -bench")
	}
	spec, err := workload.ByName(*bench)
	if err != nil {
		return err
	}
	scale, err := workload.ScaleByName(*scaleName)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig(scale)
	cfg.MaxK = *maxK
	an, err := core.Analyze(ctx, spec, cfg)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}

	whole := an.WholePinball()
	wholePath := filepath.Join(*dir, spec.Name+".whole.pb")
	if err := whole.Save(wholePath); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d instructions)\n", wholePath, whole.Len)

	pbs, err := an.Pinballs(an.Result, *warmup)
	if err != nil {
		return err
	}
	for i, pb := range pbs {
		path := filepath.Join(*dir, fmt.Sprintf("%s.region_%02d.pb", spec.Name, i))
		if err := pb.Save(path); err != nil {
			return err
		}
		fmt.Printf("wrote %s (weight %.4f, %d instructions)\n", path, pb.Weight, pb.Len)
	}
	return nil
}

func replay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	path := fs.String("pinball", "", "pinball file to replay")
	scaleName := fs.String("scale", "medium", "workload scale the pinball was captured at")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("missing -pinball")
	}
	pb, err := pinball.Load(*path)
	if err != nil {
		return err
	}
	if pb.Scale != "" && pb.Scale != *scaleName {
		fmt.Fprintf(os.Stderr, "pinplay: note: pinball was captured at scale %q, replaying at %q\n", pb.Scale, *scaleName)
		*scaleName = pb.Scale
	}
	spec, err := workload.ByName(pb.Benchmark)
	if err != nil {
		return err
	}
	scale, err := workload.ScaleByName(*scaleName)
	if err != nil {
		return err
	}
	prog, err := spec.Build(scale)
	if err != nil {
		return err
	}

	hier, err := cache.NewHierarchy(cache.ScaledHierarchy(cache.TableIConfig(), scale.CacheDivs))
	if err != nil {
		return err
	}
	mix := pintool.NewLdStMix()
	ac := pintool.NewAllCache(hier)
	n, err := pinball.Replay(prog, pb, []pin.Tool{mix, ac}...)
	if err != nil {
		return err
	}

	fmt.Printf("pinball:      %s (%s, region %d, weight %.4f)\n", *path, pb.Kind, pb.Region, pb.Weight)
	if pb.HasWarmup {
		fmt.Printf("warm-up:      %d instructions\n", pb.WarmupLen)
	}
	fmt.Printf("instructions: %d\n", n)
	fr := mix.Fractions()
	fmt.Printf("ldstmix:      NO_MEM %.2f%%  MEM_R %.2f%%  MEM_W %.2f%%  MEM_RW %.2f%%\n",
		fr[0]*100, fr[1]*100, fr[2]*100, fr[3]*100)
	l1d, l2, l3 := hier.MissRates()
	fmt.Printf("allcache:     L1D %.2f%%  L2 %.2f%%  L3 %.2f%% miss\n", l1d*100, l2*100, l3*100)
	return nil
}
