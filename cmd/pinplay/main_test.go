package main

import (
	"context"

	"os"
	"path/filepath"
	"testing"
)

func TestRunValidation(t *testing.T) {
	if err := run(context.Background(), nil); err == nil {
		t.Error("no args accepted")
	}
	if err := run(context.Background(), []string{"bogus"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run(context.Background(), []string{"log"}); err == nil {
		t.Error("log without -bench accepted")
	}
	if err := run(context.Background(), []string{"replay"}); err == nil {
		t.Error("replay without -pinball accepted")
	}
	if err := run(context.Background(), []string{"replay", "-pinball", "/nonexistent.pb"}); err == nil {
		t.Error("missing pinball file accepted")
	}
}

func TestLogThenReplay(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), []string{"log", "-bench", "omnetpp_r", "-scale", "small",
		"-dir", dir, "-warmup", "2"}); err != nil {
		t.Fatal(err)
	}
	whole := filepath.Join(dir, "520.omnetpp_r.whole.pb")
	if _, err := os.Stat(whole); err != nil {
		t.Fatalf("whole pinball missing: %v", err)
	}
	region := filepath.Join(dir, "520.omnetpp_r.region_00.pb")
	if err := run(context.Background(), []string{"replay", "-pinball", region, "-scale", "small"}); err != nil {
		t.Fatal(err)
	}
}
