package specsampling

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation section. Each benchmark regenerates its artefact —
// the same rows/series the paper reports — and publishes the headline
// numbers as benchmark metrics so regressions in the reproduction's *shape*
// (who wins, by what factor) are visible in benchmark diffs.
//
// By default the harness runs on a representative 6-benchmark subset at the
// "small" scale so `go test -bench=.` completes in minutes. Set
// SPECSIM_SCALE=medium (or full) and SPECSIM_ALL=1 to regenerate
// EXPERIMENTS.md-grade numbers:
//
//	SPECSIM_SCALE=medium SPECSIM_ALL=1 go test -bench=. -benchtime=1x

import (
	"io"
	"os"
	"sync"
	"testing"

	"specsampling/internal/experiments"
	"specsampling/internal/workload"
)

// benchSubset covers the paper's behavioural extremes: few-phase
// (omnetpp), dominant-phase FP (bwaves), uniform-weight (deepsjeng),
// pointer-chasing (mcf), mixed INT (xz) and the Figure 3 subject
// (xalancbmk).
var benchSubset = []string{
	"520.omnetpp_r", "505.mcf_r", "557.xz_r",
	"623.xalancbmk_s", "631.deepsjeng_s", "503.bwaves_r",
}

var (
	runnerOnce sync.Once
	runner     *experiments.Runner
	runnerErr  error
)

// sharedRunner caches analyses across benchmarks so each figure pays only
// its own incremental cost.
func sharedRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	runnerOnce.Do(func() {
		scale := workload.ScaleFromEnv(workload.ScaleSmall)
		benches := benchSubset
		if os.Getenv("SPECSIM_ALL") != "" {
			benches = nil // full 29-benchmark suite
		}
		var out io.Writer = io.Discard
		if testing.Verbose() {
			out = os.Stdout
		}
		runner, runnerErr = experiments.New(experiments.Options{
			Scale:      scale,
			Benchmarks: benches,
			Out:        out,
		})
	})
	if runnerErr != nil {
		b.Fatal(runnerErr)
	}
	return runner
}

// BenchmarkTableI regenerates Table I (allcache configuration).
func BenchmarkTableI(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		r.TableI()
	}
}

// BenchmarkTableII regenerates Table II: simulation points and
// 90th-percentile simulation points per benchmark. Paper averages: 19.75
// and 11.31.
func BenchmarkTableII(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.TableII()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AvgPoints, "avg-points")
		b.ReportMetric(res.AvgPoints90, "avg-points-90pct")
	}
}

// BenchmarkTableIII regenerates Table III (Sniper system configuration).
func BenchmarkTableIII(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		r.TableIII()
	}
}

// BenchmarkFig3a regenerates Figure 3(a): MaxK sensitivity for
// xalancbmk_s.
func BenchmarkFig3a(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Fig3a("623.xalancbmk_s", nil)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(float64(last.NumPoints), "points-at-maxk35")
	}
}

// BenchmarkFig3b regenerates Figure 3(b): slice-size sensitivity for
// xalancbmk_s.
func BenchmarkFig3b(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Fig3b("623.xalancbmk_s", nil)
		if err != nil {
			b.Fatal(err)
		}
		// L3 cold-start inflation should shrink as slices grow: report the
		// first/last L3 miss rates.
		b.ReportMetric(res.Points[0].Cache.L3*100, "L3-miss-at-15M-%")
		b.ReportMetric(res.Points[len(res.Points)-1].Cache.L3*100, "L3-miss-at-100M-%")
	}
}

// BenchmarkFig4 regenerates Figure 4: within-cluster variance vs cluster
// count.
func BenchmarkFig4(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Fig4(nil)
		if err != nil {
			b.Fatal(err)
		}
		// Variance at k=5 over k=35, averaged: the Figure 4 slope.
		var ratio float64
		var n int
		for _, vs := range res.Variance {
			if vs[35] > 0 {
				ratio += vs[5] / vs[35]
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(ratio/float64(n), "variance-ratio-k5-over-k35")
		}
	}
}

// BenchmarkFig5 regenerates Figure 5: instruction-count and run-time
// reduction of Regional and Reduced Regional runs. Paper: ~650x/~750x and
// ~1225x/~1297x (at full 29-benchmark, paper-proportional scale).
func BenchmarkFig5(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SuiteInstrReductionRegional, "instr-reduction-regional-x")
		b.ReportMetric(res.SuiteInstrReductionReduced, "instr-reduction-reduced-x")
		b.ReportMetric(res.SuiteTimeReductionRegional, "time-reduction-regional-x")
		b.ReportMetric(res.SuiteTimeReductionReduced, "time-reduction-reduced-x")
	}
}

// BenchmarkFig6 regenerates Figure 6: simulation-point weights.
func BenchmarkFig6(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		rows, err := r.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			if row.Benchmark == "503.bwaves_r" {
				// The paper: one dominant ~60% phase, top-3 ~80%.
				b.ReportMetric(row.Weights[0]*100, "bwaves-top1-weight-%")
			}
		}
	}
}

// BenchmarkFig7 regenerates Figure 7: instruction-distribution accuracy.
// Paper: <1% error for Regional and Reduced Regional runs.
func BenchmarkFig7(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AvgAbsErrRegional, "mix-err-regional-pp")
		b.ReportMetric(res.AvgAbsErrReduced, "mix-err-reduced-pp")
	}
}

// BenchmarkFig8 regenerates Figure 8: cache miss rates of Whole, Regional,
// Reduced and Warmup Regional runs. Paper: L3 error +25.16% cold, +9.08%
// warmed.
func BenchmarkFig8(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RegionalDiff[0], "L1D-err-regional-pp")
		b.ReportMetric(res.RegionalDiff[2], "L3-err-regional-pp")
		b.ReportMetric(res.WarmupDiff[2], "L3-err-warmup-pp")
	}
}

// BenchmarkFig9 regenerates Figure 9: error and execution time vs
// simulation-point percentile.
func BenchmarkFig9(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		pts, err := r.Fig9(nil)
		if err != nil {
			b.Fatal(err)
		}
		first, last := pts[0], pts[len(pts)-1]
		b.ReportMetric(first.MixErrPct, "mix-err-at-100pct-pp")
		b.ReportMetric(last.MixErrPct, "mix-err-at-30pct-pp")
	}
}

// BenchmarkFig10 regenerates Figure 10: L3 access counts.
func BenchmarkFig10(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		rows, err := r.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		var whole, regional float64
		for _, row := range rows {
			whole += float64(row.Whole)
			regional += float64(row.Regional)
		}
		if regional > 0 {
			b.ReportMetric(whole/regional, "L3-access-reduction-x")
		}
	}
}

// BenchmarkFig12 regenerates Figure 12: CPI of native execution vs Sniper
// with simulation points. Paper: 2.59% average error (Regional), 13.9%
// deviation (Reduced).
func BenchmarkFig12(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AvgCPIErrRegionalPct, "cpi-err-regional-%")
		b.ReportMetric(res.AvgCPIErrReducedPct, "cpi-err-reduced-%")
		b.ReportMetric(res.Correlation, "cpi-correlation")
	}
}
