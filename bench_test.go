package specsampling

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation section. Each benchmark regenerates its artefact —
// the same rows/series the paper reports — and publishes the headline
// numbers as benchmark metrics so regressions in the reproduction's *shape*
// (who wins, by what factor) are visible in benchmark diffs.
//
// By default the harness runs on a representative 6-benchmark subset at the
// "small" scale so `go test -bench=.` completes in minutes. Set
// SPECSIM_SCALE=medium (or full) and SPECSIM_ALL=1 to regenerate
// EXPERIMENTS.md-grade numbers:
//
//	SPECSIM_SCALE=medium SPECSIM_ALL=1 go test -bench=. -benchtime=1x

import (
	"io"
	"os"
	"runtime"
	"sync"
	"testing"

	"specsampling/internal/experiments"
	"specsampling/internal/kmeans"
	"specsampling/internal/rng"
	"specsampling/internal/simpoint"
	"specsampling/internal/workload"
)

// benchSubset covers the paper's behavioural extremes: few-phase
// (omnetpp), dominant-phase FP (bwaves), uniform-weight (deepsjeng),
// pointer-chasing (mcf), mixed INT (xz) and the Figure 3 subject
// (xalancbmk).
var benchSubset = []string{
	"520.omnetpp_r", "505.mcf_r", "557.xz_r",
	"623.xalancbmk_s", "631.deepsjeng_s", "503.bwaves_r",
}

var (
	runnerOnce sync.Once
	runner     *experiments.Runner
	runnerErr  error
)

// sharedRunner caches analyses across benchmarks so each figure pays only
// its own incremental cost.
func sharedRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	runnerOnce.Do(func() {
		scale := workload.ScaleFromEnv(workload.ScaleSmall)
		benches := benchSubset
		if os.Getenv("SPECSIM_ALL") != "" {
			benches = nil // full 29-benchmark suite
		}
		var out io.Writer = io.Discard
		if testing.Verbose() {
			out = os.Stdout
		}
		runner, runnerErr = experiments.New(experiments.Options{
			Scale:      scale,
			Benchmarks: benches,
			Out:        out,
		})
	})
	if runnerErr != nil {
		b.Fatal(runnerErr)
	}
	return runner
}

// BenchmarkTableI regenerates Table I (allcache configuration).
func BenchmarkTableI(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		r.TableI()
	}
}

// BenchmarkTableII regenerates Table II: simulation points and
// 90th-percentile simulation points per benchmark. Paper averages: 19.75
// and 11.31.
func BenchmarkTableII(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.TableII(tctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AvgPoints, "avg-points")
		b.ReportMetric(res.AvgPoints90, "avg-points-90pct")
	}
}

// BenchmarkTableIII regenerates Table III (Sniper system configuration).
func BenchmarkTableIII(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		r.TableIII()
	}
}

// BenchmarkFig3a regenerates Figure 3(a): MaxK sensitivity for
// xalancbmk_s.
func BenchmarkFig3a(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Fig3a(tctx, "623.xalancbmk_s", nil)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(float64(last.NumPoints), "points-at-maxk35")
	}
}

// BenchmarkFig3b regenerates Figure 3(b): slice-size sensitivity for
// xalancbmk_s.
func BenchmarkFig3b(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Fig3b(tctx, "623.xalancbmk_s", nil)
		if err != nil {
			b.Fatal(err)
		}
		// L3 cold-start inflation should shrink as slices grow: report the
		// first/last L3 miss rates.
		b.ReportMetric(res.Points[0].Cache.L3*100, "L3-miss-at-15M-%")
		b.ReportMetric(res.Points[len(res.Points)-1].Cache.L3*100, "L3-miss-at-100M-%")
	}
}

// BenchmarkFig4 regenerates Figure 4: within-cluster variance vs cluster
// count.
func BenchmarkFig4(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Fig4(tctx, nil)
		if err != nil {
			b.Fatal(err)
		}
		// Variance at k=5 over k=35, averaged: the Figure 4 slope.
		var ratio float64
		var n int
		for _, vs := range res.Variance {
			if vs[35] > 0 {
				ratio += vs[5] / vs[35]
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(ratio/float64(n), "variance-ratio-k5-over-k35")
		}
	}
}

// BenchmarkFig5 regenerates Figure 5: instruction-count and run-time
// reduction of Regional and Reduced Regional runs. Paper: ~650x/~750x and
// ~1225x/~1297x (at full 29-benchmark, paper-proportional scale).
func BenchmarkFig5(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Fig5(tctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SuiteInstrReductionRegional, "instr-reduction-regional-x")
		b.ReportMetric(res.SuiteInstrReductionReduced, "instr-reduction-reduced-x")
		b.ReportMetric(res.SuiteTimeReductionRegional, "time-reduction-regional-x")
		b.ReportMetric(res.SuiteTimeReductionReduced, "time-reduction-reduced-x")
	}
}

// BenchmarkFig6 regenerates Figure 6: simulation-point weights.
func BenchmarkFig6(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		rows, err := r.Fig6(tctx)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			if row.Benchmark == "503.bwaves_r" {
				// The paper: one dominant ~60% phase, top-3 ~80%.
				b.ReportMetric(row.Weights[0]*100, "bwaves-top1-weight-%")
			}
		}
	}
}

// BenchmarkFig7 regenerates Figure 7: instruction-distribution accuracy.
// Paper: <1% error for Regional and Reduced Regional runs.
func BenchmarkFig7(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Fig7(tctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AvgAbsErrRegional, "mix-err-regional-pp")
		b.ReportMetric(res.AvgAbsErrReduced, "mix-err-reduced-pp")
	}
}

// BenchmarkFig8 regenerates Figure 8: cache miss rates of Whole, Regional,
// Reduced and Warmup Regional runs. Paper: L3 error +25.16% cold, +9.08%
// warmed.
func BenchmarkFig8(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Fig8(tctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RegionalDiff[0], "L1D-err-regional-pp")
		b.ReportMetric(res.RegionalDiff[2], "L3-err-regional-pp")
		b.ReportMetric(res.WarmupDiff[2], "L3-err-warmup-pp")
	}
}

// BenchmarkFig9 regenerates Figure 9: error and execution time vs
// simulation-point percentile.
func BenchmarkFig9(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		pts, err := r.Fig9(tctx, nil)
		if err != nil {
			b.Fatal(err)
		}
		first, last := pts[0], pts[len(pts)-1]
		b.ReportMetric(first.MixErrPct, "mix-err-at-100pct-pp")
		b.ReportMetric(last.MixErrPct, "mix-err-at-30pct-pp")
	}
}

// BenchmarkFig10 regenerates Figure 10: L3 access counts.
func BenchmarkFig10(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		rows, err := r.Fig10(tctx)
		if err != nil {
			b.Fatal(err)
		}
		var whole, regional float64
		for _, row := range rows {
			whole += float64(row.Whole)
			regional += float64(row.Regional)
		}
		if regional > 0 {
			b.ReportMetric(whole/regional, "L3-access-reduction-x")
		}
	}
}

// ------------------------------------------------- pipeline kernels --

// clusterPoints generates a deterministic point cloud shaped like a
// projected BBV trace: N points in D dimensions scattered around K centres.
func clusterPoints(n, d, k int, seed uint64) [][]float64 {
	r := rng.New(seed)
	centres := make([][]float64, k)
	for c := range centres {
		centres[c] = make([]float64, d)
		for j := range centres[c] {
			centres[c][j] = r.Float64() * 10
		}
	}
	points := make([][]float64, n)
	for i := range points {
		cent := centres[i%k]
		p := make([]float64, d)
		for j := range p {
			p[j] = cent[j] + r.NormFloat64()*0.3
		}
		points[i] = p
	}
	return points
}

// BenchmarkKMeansRun measures the clustering kernel at the pipeline's
// worst-case shape (the paper's MaxK=35 on a long trace): serial vs all
// cores. Results are identical for every worker count.
func BenchmarkKMeansRun(b *testing.B) {
	const n, d, k = 4096, 32, 35
	points := clusterPoints(n, d, k, 1)
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", runtime.NumCPU()},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := kmeans.DefaultConfig(42)
			cfg.SampleSize = 0 // cluster the full set: this is the kernel benchmark
			cfg.Workers = bc.workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := kmeans.Run(points, k, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.K == 0 {
					b.Fatal("empty clustering")
				}
			}
		})
	}
}

// BenchmarkProfile measures the BBV profiling pass (pipeline step 1) on one
// built benchmark.
func BenchmarkProfile(b *testing.B) {
	scale := workload.ScaleFromEnv(workload.ScaleSmall)
	spec, err := workload.ByName("623.xalancbmk_s")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := spec.Build(scale)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slices, total, err := simpoint.Profile(prog, scale.SliceLen)
		if err != nil {
			b.Fatal(err)
		}
		if len(slices) == 0 || total == 0 {
			b.Fatal("empty profile")
		}
	}
}

// BenchmarkSuiteAnalyze measures the suite-level fan-out: a fresh Runner
// prewarms every per-benchmark analysis, serial vs all cores. This is the
// dominant cost of `experiments -run all`; on a multi-core machine the
// parallel variant should approach a NumCPU-fold speedup.
func BenchmarkSuiteAnalyze(b *testing.B) {
	scale := workload.ScaleFromEnv(workload.ScaleSmall)
	benches := benchSubset
	if os.Getenv("SPECSIM_ALL") != "" {
		benches = nil
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", runtime.NumCPU()},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := experiments.New(experiments.Options{
					Scale:      scale,
					Benchmarks: benches,
					Workers:    bc.workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := r.Prewarm(tctx, "all"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig12 regenerates Figure 12: CPI of native execution vs Sniper
// with simulation points. Paper: 2.59% average error (Regional), 13.9%
// deviation (Reduced).
func BenchmarkFig12(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Fig12(tctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AvgCPIErrRegionalPct, "cpi-err-regional-%")
		b.ReportMetric(res.AvgCPIErrReducedPct, "cpi-err-reduced-%")
		b.ReportMetric(res.Correlation, "cpi-correlation")
	}
}
