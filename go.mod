module specsampling

go 1.22
