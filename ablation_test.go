package specsampling

// Ablation benchmarks for the reproduction's design choices (DESIGN.md §5):
// warm-up length, random-projection dimensionality, BIC threshold and
// k-means subsampling. Each reports how the choice moves the metrics the
// paper cares about, so the default settings are justified by data rather
// than assertion.

import (
	"context"
	"fmt"
	"math"
	"testing"

	"specsampling/internal/core"
	"specsampling/internal/kmeans"
	"specsampling/internal/simpoint"
	"specsampling/internal/workload"
)

// tctx is the background context the ablation benchmarks thread through
// the core API.
var tctx = context.Background()

// ablationAnalysis builds one mid-sized pointer-chasing benchmark — the
// worst case for cold caches — at the test scale.
func ablationAnalysis(b *testing.B) *core.Analysis {
	b.Helper()
	spec, err := workload.ByName("505.mcf_r")
	if err != nil {
		b.Fatal(err)
	}
	scale := workload.ScaleFromEnv(workload.ScaleSmall)
	an, err := core.Analyze(tctx, spec, core.DefaultConfig(scale))
	if err != nil {
		b.Fatal(err)
	}
	return an
}

// BenchmarkAblationWarmupLength sweeps the warm-up length before each
// simulation point. The paper warms 500M cycles before each 30M-instruction
// region (~16 slices' worth); the L3 miss-rate error should collapse as
// warm-up grows and saturate near the default.
func BenchmarkAblationWarmupLength(b *testing.B) {
	an := ablationAnalysis(b)
	hier := an.CacheConfig()
	whole, err := an.WholeCache(tctx, hier)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, warmup := range []int{0, 4, 16, 64} {
			pbs, err := an.Pinballs(an.Result, warmup)
			if err != nil {
				b.Fatal(err)
			}
			prof, err := an.SampledCache(tctx, pbs, hier)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(math.Abs(prof.L3-whole.L3)*100,
				fmt.Sprintf("L3-err-pp-warmup-%d", warmup))
		}
	}
}

// BenchmarkAblationProjectionDims sweeps the random-projection
// dimensionality around SimPoint's default 15. Too few dimensions blur
// phases together (fewer points, worse mix error); more than 15 buys little.
func BenchmarkAblationProjectionDims(b *testing.B) {
	an := ablationAnalysis(b)
	whole := an.WholeMix(tctx)
	for i := 0; i < b.N; i++ {
		for _, dims := range []int{2, 15, 64} {
			cfg := simpoint.DefaultConfig(an.Config.Scale.SliceLen)
			cfg.ProjectDims = dims
			res, err := simpoint.Cluster(an.Prog.Name, an.Slices, an.TotalInstrs, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.NumPoints()), fmt.Sprintf("points-dims-%d", dims))

			pbs, err := an.Pinballs(res, 0)
			if err != nil {
				b.Fatal(err)
			}
			mix, err := an.SampledMix(tctx, pbs)
			if err != nil {
				b.Fatal(err)
			}
			var errPP float64
			for c := 0; c < 4; c++ {
				errPP += math.Abs(mix.Fractions[c]-whole.Fractions[c]) / 4 * 100
			}
			b.ReportMetric(errPP, fmt.Sprintf("mix-err-pp-dims-%d", dims))
		}
	}
}

// BenchmarkAblationBICThreshold sweeps the BIC acceptance threshold.
// Lower thresholds accept smaller k (fewer points, coarser sampling).
func BenchmarkAblationBICThreshold(b *testing.B) {
	an := ablationAnalysis(b)
	for i := 0; i < b.N; i++ {
		prev := 0
		for _, th := range []float64{0.5, 0.9, 0.999} {
			cfg := simpoint.DefaultConfig(an.Config.Scale.SliceLen)
			cfg.BICThreshold = th
			res, err := simpoint.Cluster(an.Prog.Name, an.Slices, an.TotalInstrs, cfg)
			if err != nil {
				b.Fatal(err)
			}
			n := res.NumPoints()
			if n < prev {
				b.Errorf("points decreased as threshold rose: %d -> %d at %v", prev, n, th)
			}
			prev = n
			b.ReportMetric(float64(n), fmt.Sprintf("points-bic-%.3f", th))
		}
	}
}

// BenchmarkAblationKMeansSampling compares clustering on the full slice set
// against the default 4096-slice subsample: quality (simulation-point
// count) should be stable while time drops.
func BenchmarkAblationKMeansSampling(b *testing.B) {
	an := ablationAnalysis(b)
	for i := 0; i < b.N; i++ {
		for _, sample := range []int{512, 4096, 1 << 30} {
			cfg := simpoint.DefaultConfig(an.Config.Scale.SliceLen)
			cfg.KMeans = kmeans.DefaultConfig(cfg.Seed)
			cfg.KMeans.SampleSize = sample
			res, err := simpoint.Cluster(an.Prog.Name, an.Slices, an.TotalInstrs, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.NumPoints()), fmt.Sprintf("points-sample-%d", sample))
		}
	}
}

// BenchmarkAblationCachePrefetch quantifies the timing model's next-line
// prefetcher: CPI without it should be visibly higher on a streaming
// benchmark.
func BenchmarkAblationCachePrefetch(b *testing.B) {
	spec, err := workload.ByName("519.lbm_r") // streaming stencil code
	if err != nil {
		b.Fatal(err)
	}
	scale := workload.ScaleFromEnv(workload.ScaleSmall)
	an, err := core.Analyze(tctx, spec, core.DefaultConfig(scale))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		on := an.TimingConfig()
		off := on
		off.Prefetch = false
		cpiOn, err := an.WholeCPI(tctx, on)
		if err != nil {
			b.Fatal(err)
		}
		cpiOff, err := an.WholeCPI(tctx, off)
		if err != nil {
			b.Fatal(err)
		}
		if cpiOff.CPI < cpiOn.CPI {
			b.Errorf("prefetch made streaming slower: %v vs %v", cpiOn.CPI, cpiOff.CPI)
		}
		b.ReportMetric(cpiOn.CPI, "cpi-prefetch-on")
		b.ReportMetric(cpiOff.CPI, "cpi-prefetch-off")
	}
}
