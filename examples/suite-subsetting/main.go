// Suite subsetting: the related-work methodology the paper discusses in
// Section V-A (Limaye & Adegbija; Panda et al.) on top of this
// reproduction's substrate.
//
// Every benchmark of the synthetic SPEC CPU2017 suite is characterised by a
// whole-run feature vector (instruction mix, cache miss rates, branch MPKI,
// CPI), features are z-score normalised, and k-means with BIC model
// selection groups behaviourally similar benchmarks. Simulating one
// representative per group covers the suite's behaviour at a fraction of
// the cost — statistical sampling *across* benchmarks, complementing
// SimPoint's sampling *within* them.
//
//	go run ./examples/suite-subsetting
package main

import (
	"fmt"
	"log"
	"strings"

	"specsampling/internal/subset"
	"specsampling/internal/textplot"
	"specsampling/internal/workload"
)

func main() {
	scale := workload.ScaleFromEnv(workload.ScaleSmall)
	suite := workload.Suite()

	fmt.Printf("characterizing %d benchmarks at scale %s...\n", len(suite), scale.Name)
	features, err := subset.CharacterizeSuite(suite, scale)
	if err != nil {
		log.Fatal(err)
	}

	t := textplot.NewTable("Benchmark", "NO_MEM", "L1D miss", "L3 miss", "MPKI", "CPI")
	for _, f := range features {
		t.AddRow(f.Benchmark,
			fmt.Sprintf("%.1f%%", f.Mix[0]*100),
			fmt.Sprintf("%.1f%%", f.L1DMiss*100),
			fmt.Sprintf("%.1f%%", f.L3Miss*100),
			fmt.Sprintf("%.2f", f.BranchMPKI),
			fmt.Sprintf("%.2f", f.CPI))
	}
	fmt.Print(t.String())

	// Auto (BIC) resolves the coarse memory-bound/compute-bound split;
	// a fixed count of 10 mirrors the related work's subset sizes.
	auto, err := subset.Subset(features, 12, 2017)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBIC-selected grouping: %d groups — %v\n",
		len(auto.Groups), auto.Representatives())

	res, err := subset.SubsetK(features, 10, 2017)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d behavioural groups (coverage: simulate %.0f%% of the suite):\n\n",
		len(res.Groups), res.Coverage*100)
	g := textplot.NewTable("Representative", "Also covers")
	for _, grp := range res.Groups {
		others := []string{}
		for _, m := range grp.Members {
			if m != grp.Representative {
				others = append(others, m)
			}
		}
		g.AddRow(grp.Representative, strings.Join(others, ", "))
	}
	fmt.Print(g.String())
}
