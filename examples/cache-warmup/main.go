// Cache warm-up: the paper's Section IV-D caution as an example.
//
// Regional pinballs start with cold caches, which inflates miss rates in
// the levels far from the CPU — badly enough to mislead a memory-hierarchy
// study. This example measures L1D/L2/L3 miss rates of a benchmark three
// ways (whole run, cold regional replay, warmed regional replay) and shows
// the warm-up mitigation collapsing the LLC error, as in Figure 8.
//
//	go run ./examples/cache-warmup [benchmark]
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"specsampling/internal/cache"
	"specsampling/internal/core"
	"specsampling/internal/textplot"
	"specsampling/internal/workload"
)

func main() {
	bench := "505.mcf_r" // pointer-chasing: the worst case for cold caches
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	spec, err := workload.ByName(bench)
	if err != nil {
		log.Fatal(err)
	}
	scale := workload.ScaleFromEnv(workload.ScaleMedium)

	ctx := context.Background()
	an, err := core.Analyze(ctx, spec, core.DefaultConfig(scale))
	if err != nil {
		log.Fatal(err)
	}
	hier := cache.ScaledHierarchy(cache.TableIConfig(), scale.CacheDivs)

	whole, err := an.WholeCache(ctx, hier)
	if err != nil {
		log.Fatal(err)
	}

	cold, err := an.Pinballs(an.Result, 0)
	if err != nil {
		log.Fatal(err)
	}
	coldProf, err := an.SampledCache(ctx, cold, hier)
	if err != nil {
		log.Fatal(err)
	}

	const warmupSlices = 16 // ~ the paper's 500M-cycle warm-up, scaled
	warm, err := an.Pinballs(an.Result, warmupSlices)
	if err != nil {
		log.Fatal(err)
	}
	warmProf, err := an.SampledCache(ctx, warm, hier)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's alternative mitigation: run each regional pinball
	// multiple times, measuring only the last pass.
	repeatProf, err := an.SampledCacheRepeated(ctx, cold, hier, 3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s, %d simulation points, warm-up %d slices\n\n",
		spec.Name, an.Result.NumPoints(), warmupSlices)
	t := textplot.NewTable("Run", "L1D miss", "L2 miss", "L3 miss", "L3 accesses")
	row := func(name string, p core.CacheProfile) {
		t.AddRow(name,
			fmt.Sprintf("%.2f%%", p.L1D*100),
			fmt.Sprintf("%.2f%%", p.L2*100),
			fmt.Sprintf("%.2f%%", p.L3*100),
			fmt.Sprint(p.L3Accesses))
	}
	row("Whole", whole)
	row("Regional (cold)", coldProf)
	row("Warmup Regional", warmProf)
	row("Regional x3 replays", repeatProf)
	fmt.Print(t.String())

	coldErr := (coldProf.L3 - whole.L3) * 100
	warmErr := (warmProf.L3 - whole.L3) * 100
	fmt.Printf("\nL3 miss-rate error vs whole run: cold %+.2fpp -> warmed %+.2fpp\n", coldErr, warmErr)
	fmt.Println("The paper's conclusion (Sec. IV-D): regional pinballs with reasonable")
	fmt.Println("warm-up represent the whole benchmark; without it, memory-hierarchy")
	fmt.Println("exploration with SimPoints can lead to incorrect design choices.")
}
