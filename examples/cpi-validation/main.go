// CPI validation: the paper's Figure 12 experiment as an example.
//
// The benchmark is run "natively" (whole-program execution on the native
// hardware model with perf-style counters) and compared against the Sniper
// timing model executing only the SimPoint-chosen regional pinballs, with
// weight-averaged CPI. Good agreement means a sampled simulation predicts
// real performance.
//
//	go run ./examples/cpi-validation [benchmark...]
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"

	"specsampling/internal/core"
	"specsampling/internal/native"
	"specsampling/internal/stats"
	"specsampling/internal/textplot"
	"specsampling/internal/workload"
)

func main() {
	benches := []string{"541.leela_r", "505.mcf_r", "520.omnetpp_r", "538.imagick_r"}
	if len(os.Args) > 1 {
		benches = os.Args[1:]
	}
	scale := workload.ScaleFromEnv(workload.ScaleMedium)
	ctx := context.Background()

	t := textplot.NewTable("Benchmark", "Native CPI", "Sniper Regional", "Sniper Reduced", "Err %")
	var natCPIs, regCPIs []float64
	for _, name := range benches {
		spec, err := workload.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		an, err := core.Analyze(ctx, spec, core.DefaultConfig(scale))
		if err != nil {
			log.Fatal(err)
		}

		// "perf stat" on the native machine: whole-program execution.
		nat, err := native.PerfStat(an.Prog, scale.CacheDivs, 0)
		if err != nil {
			log.Fatal(err)
		}

		// Sniper on the regional pinballs, with warm-up before each region.
		pbs, err := an.Pinballs(an.Result, 16)
		if err != nil {
			log.Fatal(err)
		}
		regional, err := an.SampledCPI(ctx, pbs, an.TimingConfig())
		if err != nil {
			log.Fatal(err)
		}

		// And on the 90th-percentile reduced points.
		reducedRes, err := an.Result.Reduce(0.9)
		if err != nil {
			log.Fatal(err)
		}
		rpbs, err := an.Pinballs(reducedRes, 16)
		if err != nil {
			log.Fatal(err)
		}
		reduced, err := an.SampledCPI(ctx, rpbs, an.TimingConfig())
		if err != nil {
			log.Fatal(err)
		}

		natCPIs = append(natCPIs, nat.CPI())
		regCPIs = append(regCPIs, regional.CPI)
		t.AddRow(spec.Name,
			fmt.Sprintf("%.3f", nat.CPI()),
			fmt.Sprintf("%.3f", regional.CPI),
			fmt.Sprintf("%.3f", reduced.CPI),
			fmt.Sprintf("%.2f", math.Abs(regional.CPI-nat.CPI())/nat.CPI()*100))
	}
	fmt.Print(t.String())
	fmt.Printf("\nPearson correlation (native vs sampled): %.4f\n", stats.Pearson(natCPIs, regCPIs))
	fmt.Println("The paper reports 2.59% average CPI error across the suite (Fig. 12).")
}
