// MaxK sweep: the paper's Figure 3(a) sensitivity study as an example.
//
// For one benchmark, the whole execution is profiled once; clustering is
// re-run at MaxK 5..35 and the sampled instruction mix and cache miss rates
// are compared against the full run. Small MaxK values force the sampler to
// compromise its selection of representative phases — watch the errors
// shrink as MaxK grows.
//
//	go run ./examples/maxk-sweep [benchmark]
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"

	"specsampling/internal/cache"
	"specsampling/internal/core"
	"specsampling/internal/textplot"
	"specsampling/internal/workload"
)

func main() {
	bench := "623.xalancbmk_s" // the paper's Figure 3 subject
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	spec, err := workload.ByName(bench)
	if err != nil {
		log.Fatal(err)
	}
	scale := workload.ScaleFromEnv(workload.ScaleMedium)

	ctx := context.Background()
	an, err := core.Analyze(ctx, spec, core.DefaultConfig(scale))
	if err != nil {
		log.Fatal(err)
	}
	hier := cache.ScaledHierarchy(cache.TableIConfig(), scale.CacheDivs)
	whole := an.WholeMix(ctx)
	wholeCache, err := an.WholeCache(ctx, hier)
	if err != nil {
		log.Fatal(err)
	}

	points, err := an.SweepMaxK(ctx, []int{5, 10, 15, 20, 25, 30, 35}, hier)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s at scale %s — full run: NO_MEM %.2f%%, L3 miss %.2f%%\n\n",
		spec.Name, scale.Name, whole.Fractions[0]*100, wholeCache.L3*100)
	t := textplot.NewTable("MaxK", "Points", "Mix err (pp)", "L1D err (pp)", "L3 err (pp)")
	for _, p := range points {
		var mixErr float64
		for c := 0; c < 4; c++ {
			mixErr += math.Abs(p.Mix.Fractions[c]-whole.Fractions[c]) / 4 * 100
		}
		t.AddRow(p.Label, fmt.Sprint(p.NumPoints),
			fmt.Sprintf("%.3f", mixErr),
			fmt.Sprintf("%+.2f", (p.Cache.L1D-wholeCache.L1D)*100),
			fmt.Sprintf("%+.2f", (p.Cache.L3-wholeCache.L3)*100))
	}
	fmt.Print(t.String())
	fmt.Println("\nAs in the paper, small MaxK shows large deviations; most benchmarks")
	fmt.Println("need well under 35 clusters to capture all their phases (Table II).")
}
