// Quickstart: the SimPoint pipeline end to end on one benchmark.
//
// It builds a synthetic SPEC CPU2017 benchmark, finds its simulation points,
// replays them as regional pinballs with the ldstmix Pintool, and compares
// the weighted sampled instruction distribution against the whole run — the
// paper's central accuracy experiment, in ~40 lines of API use.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"specsampling/internal/core"
	"specsampling/internal/obs"
	"specsampling/internal/sched"
	"specsampling/internal/workload"
)

func main() {
	// 0. Narrate progress to stderr while the pipeline runs. Observability
	// is off by default; enabling a sink costs one atomic store.
	obs.Enable(obs.NewNarrator(os.Stderr))
	defer obs.Disable()

	// 1. Pick a benchmark and a scale.
	spec, err := workload.ByName("623.xalancbmk_s")
	if err != nil {
		log.Fatal(err)
	}
	scale := workload.ScaleFromEnv(workload.ScaleMedium)
	cfg := core.DefaultConfig(scale)
	obs.Headerf("scale=%s slice=%d maxk=%d seed=%d workers=%d",
		scale.Name, scale.SliceLen, cfg.SimPoint.MaxK, cfg.Seed, sched.Workers(cfg.Workers))

	// 2. Profile and cluster: one pass over the whole execution collects a
	// basic block vector per 30M-equivalent slice; k-means with BIC model
	// selection (MaxK 35) groups the slices into phases.
	ctx := context.Background()
	an, err := core.Analyze(ctx, spec, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d slices -> %d simulation points\n",
		spec.Name, an.Result.NumSlices, an.Result.NumPoints())

	// 3. Cut regional pinballs (checkpoints) at the chosen points.
	pinballs, err := an.Pinballs(an.Result, 0)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Replay them (in parallel) with ldstmix and weight-average.
	sampled, err := an.SampledMix(ctx, pinballs)
	if err != nil {
		log.Fatal(err)
	}
	whole := an.WholeMix(ctx)

	// 5. Compare: the paper reports <1% error (Figure 7).
	labels := []string{"NO_MEM", "MEM_R", "MEM_W", "MEM_RW"}
	fmt.Printf("%-8s %10s %10s %8s\n", "category", "whole", "sampled", "error")
	for c, label := range labels {
		fmt.Printf("%-8s %9.2f%% %9.2f%% %7.3fpp\n", label,
			whole.Fractions[c]*100, sampled.Fractions[c]*100,
			(sampled.Fractions[c]-whole.Fractions[c])*100)
	}
	fmt.Printf("instructions: whole %d, sampled %d (%.0fx reduction)\n",
		whole.Instrs, sampled.Instrs, float64(whole.Instrs)/float64(sampled.Instrs))
}
